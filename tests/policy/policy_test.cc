// Baseline policy behaviors: UCSG renicing, Acclaim's FAE, the power
// manager's power-oriented freezing, and the scheme registry.
#include <gtest/gtest.h>

#include "src/harness/experiment.h"
#include "src/policy/power_manager.h"
#include "src/policy/registry.h"
#include "src/policy/ucsg.h"
#include "src/proc/task.h"

namespace ice {
namespace {

TEST(Registry, KnowsAllSchemes) {
  RegisterIceScheme();
  auto& registry = SchemeRegistry::Instance();
  for (const char* key : {"lru_cfs", "ucsg", "acclaim", "power", "ice"}) {
    EXPECT_TRUE(registry.Contains(key)) << key;
    auto scheme = registry.Create(key);
    ASSERT_NE(scheme, nullptr);
    EXPECT_FALSE(scheme->name().empty());
  }
  EXPECT_FALSE(registry.Contains("nope"));
}

TEST(Ucsg, ForegroundTasksBoostedBackgroundDemoted) {
  ExperimentConfig config;
  config.seed = 3;
  config.scheme = "ucsg";
  Experiment exp(config);
  Uid a = exp.UidOf("Twitter");
  Uid b = exp.UidOf("Amazon");
  exp.am().Launch(a);
  exp.AwaitInteractive(a);
  exp.am().Launch(b);
  exp.AwaitInteractive(b);

  App* fg = exp.am().FindApp(b);
  App* bg = exp.am().FindApp(a);
  for (Process* p : fg->processes()) {
    for (Task* t : p->tasks()) {
      EXPECT_EQ(t->nice(), UcsgScheme::kForegroundNice);
    }
  }
  for (Process* p : bg->processes()) {
    for (Task* t : p->tasks()) {
      EXPECT_EQ(t->nice(), UcsgScheme::kBackgroundNice);
    }
  }
}

TEST(Ucsg, SwitchingRestoresBoost) {
  ExperimentConfig config;
  config.seed = 3;
  config.scheme = "ucsg";
  Experiment exp(config);
  Uid a = exp.UidOf("Twitter");
  Uid b = exp.UidOf("Amazon");
  exp.am().Launch(a);
  exp.AwaitInteractive(a);
  exp.am().Launch(b);
  exp.AwaitInteractive(b);
  exp.am().Launch(a);  // Back to a.
  App* app_a = exp.am().FindApp(a);
  for (Process* p : app_a->processes()) {
    for (Task* t : p->tasks()) {
      EXPECT_EQ(t->nice(), UcsgScheme::kForegroundNice);
    }
  }
}

TEST(Acclaim, ForegroundPagesNeverEvicted) {
  ExperimentConfig config;
  config.seed = 5;
  config.scheme = "acclaim";
  Experiment exp(config);
  Uid fg = exp.UidOf("TikTok");
  exp.CacheBackgroundApps(8, {fg});
  ScenarioResult r = exp.RunScenario(ScenarioKind::kShortVideo, Sec(20), Sec(120));
  EXPECT_EQ(r.refaults_fg, 0u) << "FAE must protect foreground pages";
  AddressSpace* space = exp.am().main_space(fg);
  EXPECT_EQ(space->total_evictions, 0u);
}

TEST(Acclaim, BaselineDoesEvictForeground) {
  ExperimentConfig config;
  config.seed = 5;
  config.scheme = "lru_cfs";
  Experiment exp(config);
  Uid fg = exp.UidOf("TikTok");
  exp.CacheBackgroundApps(8, {fg});
  exp.RunScenario(ScenarioKind::kShortVideo, Sec(20), Sec(120));
  AddressSpace* space = exp.am().main_space(fg);
  EXPECT_GT(space->total_evictions, 0u)
      << "under stock LRU the foreground app gets proportional pressure";
}

TEST(PowerManager, FreezesCpuHungryBgApps) {
  ExperimentConfig config;
  config.seed = 5;
  config.scheme = "power";
  Experiment exp(config);
  Uid fg = exp.UidOf("TikTok");
  exp.CacheBackgroundApps(6, {fg});
  exp.am().Launch(fg);
  exp.AwaitInteractive(fg);
  exp.engine().RunFor(Sec(90));
  EXPECT_GT(exp.engine().stats().Get(stat::kFreezes), 0u);
  // Fixed-duration freezing: thaws happen too.
  exp.engine().RunFor(Sec(60));
  EXPECT_GT(exp.engine().stats().Get(stat::kThaws), 0u);
}

TEST(PowerManager, NoFreezingWhileCharging) {
  PowerManagerScheme::Config pm_config;
  pm_config.charging = true;
  ExperimentConfig config;
  config.seed = 5;
  Experiment exp(config);  // Build baseline, then install power manager manually.
  PowerManagerScheme scheme(pm_config);
  SystemRefs refs;
  refs.engine = &exp.engine();
  refs.mm = &exp.mm();
  refs.scheduler = &exp.scheduler();
  refs.freezer = &exp.freezer();
  refs.am = &exp.am();
  scheme.Install(refs);

  exp.CacheBackgroundApps(6);
  exp.engine().RunFor(Sec(120));
  EXPECT_EQ(exp.engine().stats().Get(stat::kFreezes), 0u);
}

TEST(PowerManager, NeverFreezesForegroundOrPerceptible) {
  ExperimentConfig config;
  config.seed = 5;
  config.scheme = "power";
  Experiment exp(config);
  Uid fg = exp.UidOf("TikTok");
  Uid music = exp.UidOf("Skype");  // Perceptible in BG.
  exp.am().Launch(music);
  exp.AwaitInteractive(music);
  exp.CacheBackgroundApps(5, {fg, music});
  exp.am().Launch(fg);
  exp.AwaitInteractive(fg);
  exp.engine().RunFor(Sec(120));
  EXPECT_FALSE(exp.am().FindApp(fg)->frozen());
  EXPECT_FALSE(exp.am().FindApp(music)->frozen());
}

}  // namespace
}  // namespace ice
