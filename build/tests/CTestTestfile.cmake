# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(base_test "/root/repo/build/tests/base_test")
set_tests_properties(base_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;ice_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;ice_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;ice_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mem_test "/root/repo/build/tests/mem_test")
set_tests_properties(mem_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;22;ice_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(proc_test "/root/repo/build/tests/proc_test")
set_tests_properties(proc_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;31;ice_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(android_test "/root/repo/build/tests/android_test")
set_tests_properties(android_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;38;ice_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workload_test "/root/repo/build/tests/workload_test")
set_tests_properties(workload_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;43;ice_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(policy_test "/root/repo/build/tests/policy_test")
set_tests_properties(policy_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;50;ice_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ice_core_test "/root/repo/build/tests/ice_core_test")
set_tests_properties(ice_core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;53;ice_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;61;ice_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(harness_test "/root/repo/build/tests/harness_test")
set_tests_properties(harness_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;66;ice_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(metrics_test "/root/repo/build/tests/metrics_test")
set_tests_properties(metrics_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;69;ice_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;73;ice_add_test;/root/repo/tests/CMakeLists.txt;0;")
