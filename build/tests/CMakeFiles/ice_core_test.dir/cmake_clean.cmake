file(REMOVE_RECURSE
  "CMakeFiles/ice_core_test.dir/ice/mapping_table_test.cc.o"
  "CMakeFiles/ice_core_test.dir/ice/mapping_table_test.cc.o.d"
  "CMakeFiles/ice_core_test.dir/ice/mdt_test.cc.o"
  "CMakeFiles/ice_core_test.dir/ice/mdt_test.cc.o.d"
  "CMakeFiles/ice_core_test.dir/ice/predictor_test.cc.o"
  "CMakeFiles/ice_core_test.dir/ice/predictor_test.cc.o.d"
  "CMakeFiles/ice_core_test.dir/ice/procfs_test.cc.o"
  "CMakeFiles/ice_core_test.dir/ice/procfs_test.cc.o.d"
  "CMakeFiles/ice_core_test.dir/ice/rpf_test.cc.o"
  "CMakeFiles/ice_core_test.dir/ice/rpf_test.cc.o.d"
  "CMakeFiles/ice_core_test.dir/ice/whitelist_test.cc.o"
  "CMakeFiles/ice_core_test.dir/ice/whitelist_test.cc.o.d"
  "ice_core_test"
  "ice_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ice_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
