# Empty compiler generated dependencies file for ice_core_test.
# This may be replaced when dependencies are built.
