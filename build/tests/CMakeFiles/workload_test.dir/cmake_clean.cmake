file(REMOVE_RECURSE
  "CMakeFiles/workload_test.dir/workload/app_catalog_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/app_catalog_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/bg_activity_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/bg_activity_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/launch_driver_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/launch_driver_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/scenario_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/scenario_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/synthetic_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/synthetic_test.cc.o.d"
  "workload_test"
  "workload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
