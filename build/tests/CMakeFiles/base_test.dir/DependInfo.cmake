
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/base/histogram_test.cc" "tests/CMakeFiles/base_test.dir/base/histogram_test.cc.o" "gcc" "tests/CMakeFiles/base_test.dir/base/histogram_test.cc.o.d"
  "/root/repo/tests/base/intrusive_list_test.cc" "tests/CMakeFiles/base_test.dir/base/intrusive_list_test.cc.o" "gcc" "tests/CMakeFiles/base_test.dir/base/intrusive_list_test.cc.o.d"
  "/root/repo/tests/base/rng_test.cc" "tests/CMakeFiles/base_test.dir/base/rng_test.cc.o" "gcc" "tests/CMakeFiles/base_test.dir/base/rng_test.cc.o.d"
  "/root/repo/tests/base/stats_test.cc" "tests/CMakeFiles/base_test.dir/base/stats_test.cc.o" "gcc" "tests/CMakeFiles/base_test.dir/base/stats_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ice_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_android.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
