file(REMOVE_RECURSE
  "CMakeFiles/mem_test.dir/mem/address_space_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/address_space_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/lru_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/lru_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/memory_manager_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/memory_manager_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/reclaim_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/reclaim_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/shadow_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/shadow_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/watermark_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/watermark_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/zram_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/zram_test.cc.o.d"
  "mem_test"
  "mem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
