file(REMOVE_RECURSE
  "CMakeFiles/android_test.dir/android/activity_manager_test.cc.o"
  "CMakeFiles/android_test.dir/android/activity_manager_test.cc.o.d"
  "CMakeFiles/android_test.dir/android/choreographer_test.cc.o"
  "CMakeFiles/android_test.dir/android/choreographer_test.cc.o.d"
  "CMakeFiles/android_test.dir/android/system_services_test.cc.o"
  "CMakeFiles/android_test.dir/android/system_services_test.cc.o.d"
  "android_test"
  "android_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/android_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
