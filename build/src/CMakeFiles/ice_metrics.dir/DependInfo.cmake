
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/frame_stats.cc" "src/CMakeFiles/ice_metrics.dir/metrics/frame_stats.cc.o" "gcc" "src/CMakeFiles/ice_metrics.dir/metrics/frame_stats.cc.o.d"
  "/root/repo/src/metrics/report.cc" "src/CMakeFiles/ice_metrics.dir/metrics/report.cc.o" "gcc" "src/CMakeFiles/ice_metrics.dir/metrics/report.cc.o.d"
  "/root/repo/src/metrics/timeline.cc" "src/CMakeFiles/ice_metrics.dir/metrics/timeline.cc.o" "gcc" "src/CMakeFiles/ice_metrics.dir/metrics/timeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ice_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
