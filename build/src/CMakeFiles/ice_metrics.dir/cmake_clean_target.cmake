file(REMOVE_RECURSE
  "libice_metrics.a"
)
