# Empty dependencies file for ice_metrics.
# This may be replaced when dependencies are built.
