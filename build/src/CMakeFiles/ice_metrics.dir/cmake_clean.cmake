file(REMOVE_RECURSE
  "CMakeFiles/ice_metrics.dir/metrics/frame_stats.cc.o"
  "CMakeFiles/ice_metrics.dir/metrics/frame_stats.cc.o.d"
  "CMakeFiles/ice_metrics.dir/metrics/report.cc.o"
  "CMakeFiles/ice_metrics.dir/metrics/report.cc.o.d"
  "CMakeFiles/ice_metrics.dir/metrics/timeline.cc.o"
  "CMakeFiles/ice_metrics.dir/metrics/timeline.cc.o.d"
  "libice_metrics.a"
  "libice_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ice_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
