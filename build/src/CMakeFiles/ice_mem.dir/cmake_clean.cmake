file(REMOVE_RECURSE
  "CMakeFiles/ice_mem.dir/mem/address_space.cc.o"
  "CMakeFiles/ice_mem.dir/mem/address_space.cc.o.d"
  "CMakeFiles/ice_mem.dir/mem/lru.cc.o"
  "CMakeFiles/ice_mem.dir/mem/lru.cc.o.d"
  "CMakeFiles/ice_mem.dir/mem/memory_manager.cc.o"
  "CMakeFiles/ice_mem.dir/mem/memory_manager.cc.o.d"
  "CMakeFiles/ice_mem.dir/mem/reclaim.cc.o"
  "CMakeFiles/ice_mem.dir/mem/reclaim.cc.o.d"
  "CMakeFiles/ice_mem.dir/mem/shadow.cc.o"
  "CMakeFiles/ice_mem.dir/mem/shadow.cc.o.d"
  "CMakeFiles/ice_mem.dir/mem/watermark.cc.o"
  "CMakeFiles/ice_mem.dir/mem/watermark.cc.o.d"
  "CMakeFiles/ice_mem.dir/mem/zram.cc.o"
  "CMakeFiles/ice_mem.dir/mem/zram.cc.o.d"
  "libice_mem.a"
  "libice_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ice_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
