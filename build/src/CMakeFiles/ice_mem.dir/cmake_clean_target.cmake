file(REMOVE_RECURSE
  "libice_mem.a"
)
