# Empty compiler generated dependencies file for ice_mem.
# This may be replaced when dependencies are built.
