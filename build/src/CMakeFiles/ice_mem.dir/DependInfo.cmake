
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_space.cc" "src/CMakeFiles/ice_mem.dir/mem/address_space.cc.o" "gcc" "src/CMakeFiles/ice_mem.dir/mem/address_space.cc.o.d"
  "/root/repo/src/mem/lru.cc" "src/CMakeFiles/ice_mem.dir/mem/lru.cc.o" "gcc" "src/CMakeFiles/ice_mem.dir/mem/lru.cc.o.d"
  "/root/repo/src/mem/memory_manager.cc" "src/CMakeFiles/ice_mem.dir/mem/memory_manager.cc.o" "gcc" "src/CMakeFiles/ice_mem.dir/mem/memory_manager.cc.o.d"
  "/root/repo/src/mem/reclaim.cc" "src/CMakeFiles/ice_mem.dir/mem/reclaim.cc.o" "gcc" "src/CMakeFiles/ice_mem.dir/mem/reclaim.cc.o.d"
  "/root/repo/src/mem/shadow.cc" "src/CMakeFiles/ice_mem.dir/mem/shadow.cc.o" "gcc" "src/CMakeFiles/ice_mem.dir/mem/shadow.cc.o.d"
  "/root/repo/src/mem/watermark.cc" "src/CMakeFiles/ice_mem.dir/mem/watermark.cc.o" "gcc" "src/CMakeFiles/ice_mem.dir/mem/watermark.cc.o.d"
  "/root/repo/src/mem/zram.cc" "src/CMakeFiles/ice_mem.dir/mem/zram.cc.o" "gcc" "src/CMakeFiles/ice_mem.dir/mem/zram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ice_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
