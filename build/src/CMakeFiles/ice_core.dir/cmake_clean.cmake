file(REMOVE_RECURSE
  "CMakeFiles/ice_core.dir/ice/daemon.cc.o"
  "CMakeFiles/ice_core.dir/ice/daemon.cc.o.d"
  "CMakeFiles/ice_core.dir/ice/mapping_table.cc.o"
  "CMakeFiles/ice_core.dir/ice/mapping_table.cc.o.d"
  "CMakeFiles/ice_core.dir/ice/mdt.cc.o"
  "CMakeFiles/ice_core.dir/ice/mdt.cc.o.d"
  "CMakeFiles/ice_core.dir/ice/predictor.cc.o"
  "CMakeFiles/ice_core.dir/ice/predictor.cc.o.d"
  "CMakeFiles/ice_core.dir/ice/procfs.cc.o"
  "CMakeFiles/ice_core.dir/ice/procfs.cc.o.d"
  "CMakeFiles/ice_core.dir/ice/rpf.cc.o"
  "CMakeFiles/ice_core.dir/ice/rpf.cc.o.d"
  "CMakeFiles/ice_core.dir/ice/whitelist.cc.o"
  "CMakeFiles/ice_core.dir/ice/whitelist.cc.o.d"
  "libice_core.a"
  "libice_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ice_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
