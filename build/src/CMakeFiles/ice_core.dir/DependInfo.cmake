
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ice/daemon.cc" "src/CMakeFiles/ice_core.dir/ice/daemon.cc.o" "gcc" "src/CMakeFiles/ice_core.dir/ice/daemon.cc.o.d"
  "/root/repo/src/ice/mapping_table.cc" "src/CMakeFiles/ice_core.dir/ice/mapping_table.cc.o" "gcc" "src/CMakeFiles/ice_core.dir/ice/mapping_table.cc.o.d"
  "/root/repo/src/ice/mdt.cc" "src/CMakeFiles/ice_core.dir/ice/mdt.cc.o" "gcc" "src/CMakeFiles/ice_core.dir/ice/mdt.cc.o.d"
  "/root/repo/src/ice/predictor.cc" "src/CMakeFiles/ice_core.dir/ice/predictor.cc.o" "gcc" "src/CMakeFiles/ice_core.dir/ice/predictor.cc.o.d"
  "/root/repo/src/ice/procfs.cc" "src/CMakeFiles/ice_core.dir/ice/procfs.cc.o" "gcc" "src/CMakeFiles/ice_core.dir/ice/procfs.cc.o.d"
  "/root/repo/src/ice/rpf.cc" "src/CMakeFiles/ice_core.dir/ice/rpf.cc.o" "gcc" "src/CMakeFiles/ice_core.dir/ice/rpf.cc.o.d"
  "/root/repo/src/ice/whitelist.cc" "src/CMakeFiles/ice_core.dir/ice/whitelist.cc.o" "gcc" "src/CMakeFiles/ice_core.dir/ice/whitelist.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ice_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_android.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
