# Empty dependencies file for ice_core.
# This may be replaced when dependencies are built.
