file(REMOVE_RECURSE
  "CMakeFiles/ice_sim.dir/sim/engine.cc.o"
  "CMakeFiles/ice_sim.dir/sim/engine.cc.o.d"
  "CMakeFiles/ice_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/ice_sim.dir/sim/event_queue.cc.o.d"
  "libice_sim.a"
  "libice_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ice_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
