# Empty compiler generated dependencies file for ice_sim.
# This may be replaced when dependencies are built.
