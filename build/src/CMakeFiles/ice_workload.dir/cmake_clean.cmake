file(REMOVE_RECURSE
  "CMakeFiles/ice_workload.dir/workload/app_catalog.cc.o"
  "CMakeFiles/ice_workload.dir/workload/app_catalog.cc.o.d"
  "CMakeFiles/ice_workload.dir/workload/bg_activity.cc.o"
  "CMakeFiles/ice_workload.dir/workload/bg_activity.cc.o.d"
  "CMakeFiles/ice_workload.dir/workload/launch_driver.cc.o"
  "CMakeFiles/ice_workload.dir/workload/launch_driver.cc.o.d"
  "CMakeFiles/ice_workload.dir/workload/scenario.cc.o"
  "CMakeFiles/ice_workload.dir/workload/scenario.cc.o.d"
  "CMakeFiles/ice_workload.dir/workload/synthetic.cc.o"
  "CMakeFiles/ice_workload.dir/workload/synthetic.cc.o.d"
  "CMakeFiles/ice_workload.dir/workload/usage_trace.cc.o"
  "CMakeFiles/ice_workload.dir/workload/usage_trace.cc.o.d"
  "libice_workload.a"
  "libice_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ice_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
