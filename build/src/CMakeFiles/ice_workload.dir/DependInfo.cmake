
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/app_catalog.cc" "src/CMakeFiles/ice_workload.dir/workload/app_catalog.cc.o" "gcc" "src/CMakeFiles/ice_workload.dir/workload/app_catalog.cc.o.d"
  "/root/repo/src/workload/bg_activity.cc" "src/CMakeFiles/ice_workload.dir/workload/bg_activity.cc.o" "gcc" "src/CMakeFiles/ice_workload.dir/workload/bg_activity.cc.o.d"
  "/root/repo/src/workload/launch_driver.cc" "src/CMakeFiles/ice_workload.dir/workload/launch_driver.cc.o" "gcc" "src/CMakeFiles/ice_workload.dir/workload/launch_driver.cc.o.d"
  "/root/repo/src/workload/scenario.cc" "src/CMakeFiles/ice_workload.dir/workload/scenario.cc.o" "gcc" "src/CMakeFiles/ice_workload.dir/workload/scenario.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/CMakeFiles/ice_workload.dir/workload/synthetic.cc.o" "gcc" "src/CMakeFiles/ice_workload.dir/workload/synthetic.cc.o.d"
  "/root/repo/src/workload/usage_trace.cc" "src/CMakeFiles/ice_workload.dir/workload/usage_trace.cc.o" "gcc" "src/CMakeFiles/ice_workload.dir/workload/usage_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ice_android.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
