# Empty dependencies file for ice_workload.
# This may be replaced when dependencies are built.
