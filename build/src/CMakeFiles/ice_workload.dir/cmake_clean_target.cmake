file(REMOVE_RECURSE
  "libice_workload.a"
)
