file(REMOVE_RECURSE
  "libice_harness.a"
)
