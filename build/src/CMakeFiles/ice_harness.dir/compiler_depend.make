# Empty compiler generated dependencies file for ice_harness.
# This may be replaced when dependencies are built.
