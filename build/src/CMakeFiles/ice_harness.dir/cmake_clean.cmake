file(REMOVE_RECURSE
  "CMakeFiles/ice_harness.dir/harness/experiment.cc.o"
  "CMakeFiles/ice_harness.dir/harness/experiment.cc.o.d"
  "libice_harness.a"
  "libice_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ice_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
