file(REMOVE_RECURSE
  "libice_storage.a"
)
