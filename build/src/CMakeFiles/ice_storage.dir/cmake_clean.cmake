file(REMOVE_RECURSE
  "CMakeFiles/ice_storage.dir/storage/block_device.cc.o"
  "CMakeFiles/ice_storage.dir/storage/block_device.cc.o.d"
  "CMakeFiles/ice_storage.dir/storage/flash_profiles.cc.o"
  "CMakeFiles/ice_storage.dir/storage/flash_profiles.cc.o.d"
  "libice_storage.a"
  "libice_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ice_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
