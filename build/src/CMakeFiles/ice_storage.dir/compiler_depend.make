# Empty compiler generated dependencies file for ice_storage.
# This may be replaced when dependencies are built.
