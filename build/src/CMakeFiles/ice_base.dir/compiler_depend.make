# Empty compiler generated dependencies file for ice_base.
# This may be replaced when dependencies are built.
