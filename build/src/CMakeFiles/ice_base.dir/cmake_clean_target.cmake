file(REMOVE_RECURSE
  "libice_base.a"
)
