file(REMOVE_RECURSE
  "CMakeFiles/ice_base.dir/base/histogram.cc.o"
  "CMakeFiles/ice_base.dir/base/histogram.cc.o.d"
  "CMakeFiles/ice_base.dir/base/log.cc.o"
  "CMakeFiles/ice_base.dir/base/log.cc.o.d"
  "CMakeFiles/ice_base.dir/base/rng.cc.o"
  "CMakeFiles/ice_base.dir/base/rng.cc.o.d"
  "CMakeFiles/ice_base.dir/base/stats.cc.o"
  "CMakeFiles/ice_base.dir/base/stats.cc.o.d"
  "libice_base.a"
  "libice_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ice_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
