file(REMOVE_RECURSE
  "libice_proc.a"
)
