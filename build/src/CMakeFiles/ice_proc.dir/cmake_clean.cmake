file(REMOVE_RECURSE
  "CMakeFiles/ice_proc.dir/proc/app.cc.o"
  "CMakeFiles/ice_proc.dir/proc/app.cc.o.d"
  "CMakeFiles/ice_proc.dir/proc/behavior.cc.o"
  "CMakeFiles/ice_proc.dir/proc/behavior.cc.o.d"
  "CMakeFiles/ice_proc.dir/proc/freezer.cc.o"
  "CMakeFiles/ice_proc.dir/proc/freezer.cc.o.d"
  "CMakeFiles/ice_proc.dir/proc/lmk.cc.o"
  "CMakeFiles/ice_proc.dir/proc/lmk.cc.o.d"
  "CMakeFiles/ice_proc.dir/proc/process.cc.o"
  "CMakeFiles/ice_proc.dir/proc/process.cc.o.d"
  "CMakeFiles/ice_proc.dir/proc/scheduler.cc.o"
  "CMakeFiles/ice_proc.dir/proc/scheduler.cc.o.d"
  "CMakeFiles/ice_proc.dir/proc/task.cc.o"
  "CMakeFiles/ice_proc.dir/proc/task.cc.o.d"
  "libice_proc.a"
  "libice_proc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ice_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
