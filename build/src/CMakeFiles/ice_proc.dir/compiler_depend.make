# Empty compiler generated dependencies file for ice_proc.
# This may be replaced when dependencies are built.
