
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proc/app.cc" "src/CMakeFiles/ice_proc.dir/proc/app.cc.o" "gcc" "src/CMakeFiles/ice_proc.dir/proc/app.cc.o.d"
  "/root/repo/src/proc/behavior.cc" "src/CMakeFiles/ice_proc.dir/proc/behavior.cc.o" "gcc" "src/CMakeFiles/ice_proc.dir/proc/behavior.cc.o.d"
  "/root/repo/src/proc/freezer.cc" "src/CMakeFiles/ice_proc.dir/proc/freezer.cc.o" "gcc" "src/CMakeFiles/ice_proc.dir/proc/freezer.cc.o.d"
  "/root/repo/src/proc/lmk.cc" "src/CMakeFiles/ice_proc.dir/proc/lmk.cc.o" "gcc" "src/CMakeFiles/ice_proc.dir/proc/lmk.cc.o.d"
  "/root/repo/src/proc/process.cc" "src/CMakeFiles/ice_proc.dir/proc/process.cc.o" "gcc" "src/CMakeFiles/ice_proc.dir/proc/process.cc.o.d"
  "/root/repo/src/proc/scheduler.cc" "src/CMakeFiles/ice_proc.dir/proc/scheduler.cc.o" "gcc" "src/CMakeFiles/ice_proc.dir/proc/scheduler.cc.o.d"
  "/root/repo/src/proc/task.cc" "src/CMakeFiles/ice_proc.dir/proc/task.cc.o" "gcc" "src/CMakeFiles/ice_proc.dir/proc/task.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ice_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
