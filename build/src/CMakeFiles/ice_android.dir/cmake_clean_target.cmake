file(REMOVE_RECURSE
  "libice_android.a"
)
