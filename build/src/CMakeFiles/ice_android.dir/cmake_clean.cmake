file(REMOVE_RECURSE
  "CMakeFiles/ice_android.dir/android/activity_manager.cc.o"
  "CMakeFiles/ice_android.dir/android/activity_manager.cc.o.d"
  "CMakeFiles/ice_android.dir/android/choreographer.cc.o"
  "CMakeFiles/ice_android.dir/android/choreographer.cc.o.d"
  "CMakeFiles/ice_android.dir/android/device_profile.cc.o"
  "CMakeFiles/ice_android.dir/android/device_profile.cc.o.d"
  "CMakeFiles/ice_android.dir/android/system_services.cc.o"
  "CMakeFiles/ice_android.dir/android/system_services.cc.o.d"
  "libice_android.a"
  "libice_android.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ice_android.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
