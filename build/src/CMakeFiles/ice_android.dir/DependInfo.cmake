
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/android/activity_manager.cc" "src/CMakeFiles/ice_android.dir/android/activity_manager.cc.o" "gcc" "src/CMakeFiles/ice_android.dir/android/activity_manager.cc.o.d"
  "/root/repo/src/android/choreographer.cc" "src/CMakeFiles/ice_android.dir/android/choreographer.cc.o" "gcc" "src/CMakeFiles/ice_android.dir/android/choreographer.cc.o.d"
  "/root/repo/src/android/device_profile.cc" "src/CMakeFiles/ice_android.dir/android/device_profile.cc.o" "gcc" "src/CMakeFiles/ice_android.dir/android/device_profile.cc.o.d"
  "/root/repo/src/android/system_services.cc" "src/CMakeFiles/ice_android.dir/android/system_services.cc.o" "gcc" "src/CMakeFiles/ice_android.dir/android/system_services.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ice_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ice_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
