# Empty dependencies file for ice_android.
# This may be replaced when dependencies are built.
