file(REMOVE_RECURSE
  "libice_policy.a"
)
