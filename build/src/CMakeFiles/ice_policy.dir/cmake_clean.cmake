file(REMOVE_RECURSE
  "CMakeFiles/ice_policy.dir/policy/acclaim.cc.o"
  "CMakeFiles/ice_policy.dir/policy/acclaim.cc.o.d"
  "CMakeFiles/ice_policy.dir/policy/power_manager.cc.o"
  "CMakeFiles/ice_policy.dir/policy/power_manager.cc.o.d"
  "CMakeFiles/ice_policy.dir/policy/registry.cc.o"
  "CMakeFiles/ice_policy.dir/policy/registry.cc.o.d"
  "CMakeFiles/ice_policy.dir/policy/scheme.cc.o"
  "CMakeFiles/ice_policy.dir/policy/scheme.cc.o.d"
  "CMakeFiles/ice_policy.dir/policy/ucsg.cc.o"
  "CMakeFiles/ice_policy.dir/policy/ucsg.cc.o.d"
  "libice_policy.a"
  "libice_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ice_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
