# Empty compiler generated dependencies file for ice_policy.
# This may be replaced when dependencies are built.
