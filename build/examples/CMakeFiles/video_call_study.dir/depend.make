# Empty dependencies file for video_call_study.
# This may be replaced when dependencies are built.
