file(REMOVE_RECURSE
  "CMakeFiles/video_call_study.dir/video_call_study.cc.o"
  "CMakeFiles/video_call_study.dir/video_call_study.cc.o.d"
  "video_call_study"
  "video_call_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_call_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
