file(REMOVE_RECURSE
  "CMakeFiles/daily_usage.dir/daily_usage.cc.o"
  "CMakeFiles/daily_usage.dir/daily_usage.cc.o.d"
  "daily_usage"
  "daily_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daily_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
