# Empty dependencies file for daily_usage.
# This may be replaced when dependencies are built.
