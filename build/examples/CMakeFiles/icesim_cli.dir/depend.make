# Empty dependencies file for icesim_cli.
# This may be replaced when dependencies are built.
