file(REMOVE_RECURSE
  "CMakeFiles/icesim_cli.dir/icesim_cli.cc.o"
  "CMakeFiles/icesim_cli.dir/icesim_cli.cc.o.d"
  "icesim_cli"
  "icesim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icesim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
