# Empty compiler generated dependencies file for bench_fig8_scheme_comparison.
# This may be replaced when dependencies are built.
