file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_scheme_comparison.dir/fig8_scheme_comparison.cc.o"
  "CMakeFiles/bench_fig8_scheme_comparison.dir/fig8_scheme_comparison.cc.o.d"
  "bench_fig8_scheme_comparison"
  "bench_fig8_scheme_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_scheme_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
