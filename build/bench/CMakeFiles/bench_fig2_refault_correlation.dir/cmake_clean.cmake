file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_refault_correlation.dir/fig2_refault_correlation.cc.o"
  "CMakeFiles/bench_fig2_refault_correlation.dir/fig2_refault_correlation.cc.o.d"
  "bench_fig2_refault_correlation"
  "bench_fig2_refault_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_refault_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
