file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_cpu_util.dir/tab1_cpu_util.cc.o"
  "CMakeFiles/bench_tab1_cpu_util.dir/tab1_cpu_util.cc.o.d"
  "bench_tab1_cpu_util"
  "bench_tab1_cpu_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_cpu_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
