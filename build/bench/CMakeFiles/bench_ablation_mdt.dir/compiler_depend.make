# Empty compiler generated dependencies file for bench_ablation_mdt.
# This may be replaced when dependencies are built.
