file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mdt.dir/ablation_mdt.cc.o"
  "CMakeFiles/bench_ablation_mdt.dir/ablation_mdt.cc.o.d"
  "bench_ablation_mdt"
  "bench_ablation_mdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
