file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_fps_timeline.dir/fig1_fps_timeline.cc.o"
  "CMakeFiles/bench_fig1_fps_timeline.dir/fig1_fps_timeline.cc.o.d"
  "bench_fig1_fps_timeline"
  "bench_fig1_fps_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_fps_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
