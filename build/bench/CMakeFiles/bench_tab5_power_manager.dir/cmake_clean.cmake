file(REMOVE_RECURSE
  "CMakeFiles/bench_tab5_power_manager.dir/tab5_power_manager.cc.o"
  "CMakeFiles/bench_tab5_power_manager.dir/tab5_power_manager.cc.o.d"
  "bench_tab5_power_manager"
  "bench_tab5_power_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab5_power_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
