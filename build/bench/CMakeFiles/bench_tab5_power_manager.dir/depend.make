# Empty dependencies file for bench_tab5_power_manager.
# This may be replaced when dependencies are built.
