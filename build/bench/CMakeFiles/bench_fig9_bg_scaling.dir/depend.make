# Empty dependencies file for bench_fig9_bg_scaling.
# This may be replaced when dependencies are built.
