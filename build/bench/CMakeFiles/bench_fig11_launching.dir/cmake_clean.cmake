file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_launching.dir/fig11_launching.cc.o"
  "CMakeFiles/bench_fig11_launching.dir/fig11_launching.cc.o.d"
  "bench_fig11_launching"
  "bench_fig11_launching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_launching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
