file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_page_categories.dir/fig4_page_categories.cc.o"
  "CMakeFiles/bench_fig4_page_categories.dir/fig4_page_categories.cc.o.d"
  "bench_fig4_page_categories"
  "bench_fig4_page_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_page_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
