# Empty dependencies file for bench_fig4_page_categories.
# This may be replaced when dependencies are built.
