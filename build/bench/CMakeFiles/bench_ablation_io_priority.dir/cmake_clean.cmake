file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_io_priority.dir/ablation_io_priority.cc.o"
  "CMakeFiles/bench_ablation_io_priority.dir/ablation_io_priority.cc.o.d"
  "bench_ablation_io_priority"
  "bench_ablation_io_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_io_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
