file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_reclaim_reduction.dir/fig10_reclaim_reduction.cc.o"
  "CMakeFiles/bench_fig10_reclaim_reduction.dir/fig10_reclaim_reduction.cc.o.d"
  "bench_fig10_reclaim_reduction"
  "bench_fig10_reclaim_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_reclaim_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
