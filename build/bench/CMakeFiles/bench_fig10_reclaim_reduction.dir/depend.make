# Empty dependencies file for bench_fig10_reclaim_reduction.
# This may be replaced when dependencies are built.
