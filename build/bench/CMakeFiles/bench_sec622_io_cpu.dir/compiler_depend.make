# Empty compiler generated dependencies file for bench_sec622_io_cpu.
# This may be replaced when dependencies are built.
