file(REMOVE_RECURSE
  "CMakeFiles/bench_sec622_io_cpu.dir/sec622_io_cpu.cc.o"
  "CMakeFiles/bench_sec622_io_cpu.dir/sec622_io_cpu.cc.o.d"
  "bench_sec622_io_cpu"
  "bench_sec622_io_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec622_io_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
