file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_priority_vs_freeze.dir/ablation_priority_vs_freeze.cc.o"
  "CMakeFiles/bench_ablation_priority_vs_freeze.dir/ablation_priority_vs_freeze.cc.o.d"
  "bench_ablation_priority_vs_freeze"
  "bench_ablation_priority_vs_freeze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_priority_vs_freeze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
