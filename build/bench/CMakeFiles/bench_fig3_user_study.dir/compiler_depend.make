# Empty compiler generated dependencies file for bench_fig3_user_study.
# This may be replaced when dependencies are built.
